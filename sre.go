// Package sre is a Go implementation of Symbolic Router Execution
// (Zhang, Wang, Gember-Jacobson — SIGCOMM 2022): a general and scalable
// network configuration verification engine that symbolically executes
// the network control plane and data plane with BOTH packet headers and
// link failures as symbolic inputs.
//
// SRE discovers Packet Failure Equivalence Classes (PFECs): classes of
// (packet, failure-scenario) tuples that follow the same forwarding
// path. Encoded as binary decision diagrams, PFECs reduce a wide range
// of analyses to graph algorithms:
//
//   - failure tolerance — the maximum number of simultaneous link
//     failures a property survives — is a shortest-path computation;
//   - the probability that a property holds under independent link (and
//     node) failures is a weighted path sum;
//   - configuration diffing under failures is an XOR of BDDs;
//   - specification mining enumerates tolerances for all (source,
//     prefix) pairs with stratified pruning.
//
// # Quick start
//
//	net, err := sre.ParseNetwork(configText)
//	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: 3})
//	k, err := v.FailureTolerance("A", "10.0.0.0/24")     // tolerance
//	p, err := v.Probability("A", "10.0.0.0/24", sre.LinkFailures(0.001))
//
// The underlying stages (symbolic route computation, symbolic packet
// forwarding, property analysis) live in internal packages; this package
// is the supported surface.
package sre

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"sre/internal/analysis"
	"sre/internal/bdd"
	"sre/internal/config"
	"sre/internal/coord"
	"sre/internal/obs"
	"sre/internal/order"
	"sre/internal/prob"
	"sre/internal/resil"
	"sre/internal/route"
	"sre/internal/src"
	"sre/internal/topology"
)

// Network is a parsed network: topology plus per-router configuration.
type Network = config.Network

// ParseNetwork parses the textual network format (see the config package
// documentation for the grammar: a topology section followed by router
// sections with bgp/ospf/static/interface/route-map blocks).
func ParseNetwork(text string) (*Network, error) {
	return config.ParseString(text)
}

// ReadNetwork parses a network from a reader.
func ReadNetwork(r io.Reader) (*Network, error) {
	return config.Parse(r)
}

// LoadNetwork parses a network from a file.
func LoadNetwork(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return config.Parse(f)
}

// FormatNetwork renders a network back into the textual format.
func FormatNetwork(n *Network) string { return config.Format(n) }

// Options configures verification.
type Options struct {
	// MaxFailures bounds the failure budget explored (route pruning,
	// §7.1 of the paper). Negative explores the full failure space.
	// The default (0) explores only the no-failure scenario; most
	// callers want 1-4.
	MaxFailures int
	// Abstract enables AS-path abstraction (§7.3), recommended for
	// data-center fabrics with many equal-length paths.
	Abstract bool
	// NoECMP disables multipath route selection.
	NoECMP bool
	// IBGPFullMesh enables iBGP full-mesh sessions among same-AS
	// routers that also run OSPF; sessions are modeled as virtual
	// links conditioned on underlay reachability (§4).
	IBGPFullMesh bool
	// Prefixes restricts analysis to these destination prefixes
	// (prefix pruning, §7.2). Empty means all originated prefixes.
	Prefixes []string
	// BDDNodeLimit caps the BDD node table (0 = the package default).
	// When exceeded, NewVerifier returns ErrBDDLimit — unless Resilient
	// is set, in which case overflowing prefixes are quarantined and
	// retried through the degradation ladder instead.
	BDDNodeLimit int
	// Context, when non-nil, cancels the run cooperatively: the
	// pipeline polls it from its inner loops (BDD operations, router
	// activations) and aborts within one polling interval, returning an
	// error matching ErrCanceled (or ErrDeadline when the context's own
	// deadline expired).
	Context context.Context
	// Timeout bounds the wall-clock duration of the run. When it
	// expires mid-run the pipeline aborts with an error matching
	// ErrDeadline. Zero means no budget.
	Timeout time.Duration
	// Parallelism is the number of workers used to run multi-prefix
	// verification and mining: prefixes are analyzed as independent
	// prefix-scoped pipelines (§7.2 makes the decomposition sound) on
	// a work-stealing pool, largest first, each worker with its own
	// BDD manager. 0 (the default) uses runtime.GOMAXPROCS(0); 1
	// selects the sequential code paths and produces byte-identical
	// behaviour to previous releases. Results are deterministic at any
	// setting: outcomes, merged pipelines, and mined specs are ordered
	// by prefix, never by completion order.
	Parallelism int
	// Workers, when > 0, verifies prefixes across that many worker
	// subprocesses instead of in-process goroutines: the coordinator
	// fork/execs `sre worker` children, supervises them with heartbeats
	// and per-task deadlines, retries crashed tasks with backoff, and
	// quarantines prefixes that keep crashing to an in-process fallback
	// (surfaced via Verifier.CrashDegraded). Results are byte-identical
	// to an in-process Parallelism run at any worker count. 0 (the
	// default) keeps everything in-process.
	Workers int
	// FaultPlan injects deterministic worker faults for multi-process
	// runs — testing and CI only. See the coord package for the plan
	// syntax (e.g. "crash@0;stall@2"). Empty inherits SRE_FAULT from
	// the environment.
	FaultPlan string
	// Resilient enables graceful degradation for multi-prefix runs.
	// Instead of failing the whole run when the BDD node table
	// overflows, the offending prefix is quarantined and retried
	// through an escalation ladder (AS-path abstraction, halved failure
	// budget, split header space) while the remaining prefixes complete
	// normally. Per-prefix outcomes are reported by Verifier.Outcomes.
	Resilient bool
	// Telemetry, when non-nil, collects counters, gauges, histograms,
	// and tracing spans across the run (see NewTelemetry and
	// Verifier.Metrics). Nil disables collection at near-zero cost
	// unless Progress or Trace request an internal instance.
	Telemetry *Telemetry
	// Progress receives live progress events during symbolic execution
	// ("spf: 412/1280 routers, ..."). StderrProgress() gives the
	// default rate-limited stderr ticker. Setting Progress without a
	// Telemetry creates one internally.
	Progress ProgressSink
	// Trace enables tracing spans without an explicit Telemetry: an
	// internal instance is created and its span tree is reported by
	// Verifier.Metrics.
	Trace bool
	// Recorder, when non-nil, is a flight recorder capturing structured
	// events at every pipeline stage boundary (SRC/SPF stages, scheduler
	// tasks, per-prefix attempts, BDD GCs and overflows) into a bounded
	// ring buffer. Export the recording with
	// FlightRecorder.WriteChromeTrace (Perfetto/chrome://tracing) or
	// WriteEventLog (NDJSON for `srebench -compare`). Setting Recorder
	// without a Telemetry creates one internally. Nil costs nothing on
	// the hot path.
	Recorder *FlightRecorder
	// LegacyBDDKernel runs the verifier on the pre-overhaul BDD kernel
	// (map-memoized analyses, linear folds, full cache wipe at GC). It
	// is a kill switch and the baseline of `srebench -exp bddkernel`;
	// results are identical either way, only throughput differs.
	LegacyBDDKernel bool
	// VarOrder selects the BDD link-variable order: "auto" (the
	// default — a topology-aware order is chosen per network),
	// "declaration" (link l at level 32+l, the seed layout), "bfs"
	// (breadth-first locality), or "mindeg" (minimum-degree
	// elimination). Orders are observationally identical — every query
	// returns the same answer under every order, pinned by golden
	// tests — but topology-aware orders can collapse peak BDD sizes on
	// structured networks. The order participates in result-cache keys
	// and is shipped to worker subprocesses, so changing it cleanly
	// invalidates warm caches rather than corrupting them.
	VarOrder string
	// DynamicReorder arms dynamic BDD variable reordering (Rudell
	// sifting): when live nodes after a garbage collection stay above a
	// threshold, the manager sifts variables toward levels that shrink
	// the diagram, within the header/link band boundaries. Results are
	// byte-identical with or without it — node handles survive sifting
	// and serialized BDDs carry the writer's level map — so unlike
	// VarOrder it does not participate in result-cache keys: reordered
	// and static runs share store entries. Peak node counts and sifting
	// activity are reported by Verifier.Metrics under BDD.
	DynamicReorder bool
	// Store, when non-nil, is a persistent result cache (see OpenStore):
	// each prefix is looked up before it is computed and published after
	// — across in-process, parallel, and multi-process runs, which share
	// one content-addressed key space. Results are identical with a
	// cold, warm, or corrupted cache; Verifier.Metrics reports the
	// traffic (including quarantined corrupt records) under Store.
	Store *Store
}

// telemetry resolves the telemetry instance implied by the options: the
// explicit one, or a fresh internal one when Progress or Trace ask for
// collection. The progress sink, if any, is installed on it.
func (o Options) telemetry() *obs.Telemetry {
	tel := o.Telemetry
	if tel == nil && (o.Progress != nil || o.Trace || o.Recorder != nil) {
		tel = NewTelemetry()
	}
	if tel != nil && o.Progress != nil {
		tel.SetSink(o.Progress)
	}
	if tel != nil && o.Recorder != nil {
		tel.SetRecorder(o.Recorder)
	}
	return tel
}

// ErrBDDLimit is returned when the BDD node table overflows — the
// "BDD limit" outcome of the paper's Table 2 and Figure 11.
var ErrBDDLimit = bdd.ErrNodeLimit

// Verifier holds the result of symbolically executing a network: the
// PFECs, ready for property analysis.
type Verifier struct {
	net *Network
	// Exactly one of pipe/part is set: pipe for sequential regular
	// runs, part for resilient runs (one pipeline per prefix group)
	// and parallel regular runs (one scoped pipeline per prefix).
	pipe     *analysis.Pipeline
	part     *analysis.Partitioned
	tel      *obs.Telemetry
	prefixes []route.Prefix // requested analysis domain (empty = all)
	// resilient records whether the verifier ran with
	// Options.Resilient (gates Outcomes; a parallel non-resilient run
	// also sets part but has no degradation outcomes to report).
	resilient bool
	// store is the persistent result cache the run consulted, if any
	// (surfaced in Metrics).
	store *Store
	// varOrder is the RESOLVED static variable-order method (never
	// "auto"); reorder records whether dynamic reordering was armed.
	// Both surface in Metrics and the CLI summary.
	varOrder string
	reorder  bool
}

// NewVerifier symbolically executes the network (symbolic route
// computation, then symbolic packet forwarding) and returns a verifier
// over the discovered PFECs.
func NewVerifier(net *Network, opts Options) (v *Verifier, err error) {
	srcOpts, prefixes, err := buildOpts(opts)
	if err != nil {
		return nil, err
	}
	v = &Verifier{net: net, tel: srcOpts.Telemetry, prefixes: prefixes, store: opts.Store,
		varOrder: src.LinkOrder(net, srcOpts).ID(), reorder: opts.DynamicReorder}
	defer func() {
		if err != nil {
			v = nil
		}
	}()
	defer guard("verify", srcOpts.Telemetry, &err)
	// A multi-process run hands the whole domain to the coordinator;
	// worker crashes are retried there, so only verification errors
	// (cancellation, non-convergence, a non-resilient overflow) abort.
	if opts.Workers > 0 {
		v.resilient = opts.Resilient
		domain := shardDomain(net, prefixes)
		copts := coord.Options{
			Workers:   opts.Workers,
			Verify:    srcOpts,
			Resilient: opts.Resilient,
			FaultPlan: opts.FaultPlan,
		}
		if opts.Store != nil {
			copts.Cache = opts.Store.cache()
			copts.CacheDir = opts.Store.Dir()
		}
		part, perr := coord.Run(net, domain, copts)
		if perr != nil {
			return nil, perr
		}
		v.part, v.prefixes = part, domain
		return v, nil
	}
	if opts.Resilient {
		v.resilient = true
		domain := prefixes
		if len(domain) == 0 {
			domain = net.AllPrefixes()
		}
		part, perr := analysis.RunPartitionedCached(net, srcOpts, domain, analysis.LadderOptions{}, opts.Store.cache())
		if perr != nil {
			return nil, perr
		}
		v.part, v.prefixes = part, domain
		return v, nil
	}
	// A parallel regular run shards the domain into per-prefix scoped
	// pipelines on the worker pool; any error aborts, exactly like the
	// combined pipeline it replaces. A store forces the sharded path at
	// any parallelism: the cache's unit is the prefix task.
	if domain := shardDomain(net, prefixes); len(domain) > 0 && (len(domain) > 1 && analysis.Workers(srcOpts) > 1 || opts.Store != nil) {
		part, perr := analysis.RunShardedCached(net, srcOpts, domain, analysis.Workers(srcOpts), opts.Store.cache())
		if perr != nil {
			return nil, perr
		}
		v.part = part
		return v, nil
	}
	srcOpts.Prefixes = prefixes
	sp := newSpace(net, srcOpts)
	pipe, perr := analysis.RunWithSpace(net, sp, srcOpts)
	if perr != nil {
		return nil, perr
	}
	v.pipe = pipe
	return v, nil
}

// shardDomain is the prefix domain of a parallel regular run: the
// requested prefixes, or every originated prefix when unrestricted.
func shardDomain(net *Network, prefixes []route.Prefix) []route.Prefix {
	if len(prefixes) > 0 {
		return prefixes
	}
	return net.AllPrefixes()
}

// buildOpts translates the public options into engine options (wiring
// the cancellation checker into the interrupt hook) and parses the
// requested prefixes.
func buildOpts(opts Options) (src.Options, []route.Prefix, error) {
	// The shared checker is safe for the concurrent pipelines of a
	// parallel run and costs the same on the sequential paths.
	checker := resil.NewSharedChecker(opts.Context, opts.Timeout)
	varOrder, err := order.Normalize(opts.VarOrder)
	if err != nil {
		return src.Options{}, nil, fmt.Errorf("sre: %w", err)
	}
	srcOpts := src.Options{
		PruneK:          opts.MaxFailures,
		Abstract:        opts.Abstract,
		NoECMP:          opts.NoECMP,
		IBGPFullMesh:    opts.IBGPFullMesh,
		Telemetry:       opts.telemetry(),
		Interrupt:       checker.Fn(),
		BDDNodeLimit:    opts.BDDNodeLimit,
		Parallelism:     opts.Parallelism,
		LegacyBDDKernel: opts.LegacyBDDKernel,
		VarOrder:        string(varOrder),
		DynamicReorder:  opts.DynamicReorder,
	}
	var prefixes []route.Prefix
	for _, p := range opts.Prefixes {
		pfx, err := route.ParsePrefix(p)
		if err != nil {
			return src.Options{}, nil, err
		}
		prefixes = append(prefixes, pfx)
	}
	return srcOpts, prefixes, nil
}

// Release frees the verifier's BDD resources. The verifier must not be
// used afterwards.
func (v *Verifier) Release() {
	if v.part != nil {
		v.part.Release()
		return
	}
	v.pipe.Release()
}

// NumPFECs returns the number of packet failure equivalence classes
// discovered across all sources (summed over prefix groups for a
// resilient run).
func (v *Verifier) NumPFECs() int {
	n := 0
	for _, pipe := range v.allPipes() {
		n += pipe.NumPFECs()
	}
	return n
}

// Stages returns the wall-clock durations of the two symbolic execution
// stages (SRC and SPF), as reported in the paper's Figure 13 (summed
// over prefix groups for a resilient run).
func (v *Verifier) Stages() (srcTime, spfTime float64) {
	for _, pipe := range v.allPipes() {
		srcTime += pipe.SRCTime.Seconds()
		spfTime += pipe.SPFTime.Seconds()
	}
	return srcTime, spfTime
}

// InfiniteTolerance is returned when no explored failure combination
// violates the property; with a bounded budget read it as "at least
// MaxFailures".
const InfiniteTolerance = analysis.InfiniteTolerance

// resolve translates router name and prefix string.
func (v *Verifier) resolve(srcRouter, prefix string) (topology.RouterID, route.Prefix, error) {
	s, ok := v.net.Topology.RouterByName(srcRouter)
	if !ok {
		return 0, route.Prefix{}, fmt.Errorf("sre: unknown router %q", srcRouter)
	}
	pfx, err := route.ParsePrefix(prefix)
	if err != nil {
		return 0, route.Prefix{}, err
	}
	if len(v.net.OriginsOf(pfx)) == 0 {
		return 0, route.Prefix{}, fmt.Errorf("sre: prefix %s is not originated anywhere", pfx)
	}
	return s, pfx, nil
}

// FailureTolerance returns the reachability failure tolerance from
// srcRouter to the originators of prefix: the maximum k such that the
// prefix stays reachable under every combination of at most k link
// failures. -1 means unreachable even with all links up;
// InfiniteTolerance means no explored combination breaks it.
func (v *Verifier) FailureTolerance(srcRouter, prefix string) (k int, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	k = InfiniteTolerance
	for _, pipe := range pipes {
		hdr := pipe.OwnedHeaders(pfx)
		prop := pipe.ReachBDD(s, pipe.OriginSet(pfx), hdr)
		if t := pipe.MinTolerance(prop, hdr); t < k {
			k = t
		}
	}
	return k, nil
}

// WaypointTolerance is FailureTolerance for the property "reaches the
// prefix AND traverses waypoint".
func (v *Verifier) WaypointTolerance(srcRouter, prefix, waypoint string) (k int, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	w, ok := v.net.Topology.RouterByName(waypoint)
	if !ok {
		return 0, fmt.Errorf("sre: unknown waypoint %q", waypoint)
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	k = InfiniteTolerance
	for _, pipe := range pipes {
		hdr := pipe.OwnedHeaders(pfx)
		prop := pipe.WaypointBDD(s, pipe.OriginSet(pfx), w, hdr)
		if t := pipe.MinTolerance(prop, hdr); t < k {
			k = t
		}
	}
	return k, nil
}

// WaypointOnlyTolerance returns the failure tolerance of the property
// "no packet for the prefix from srcRouter reaches its originators
// WITHOUT traversing waypoint": the maximum k such that no combination
// of at most k failures lets traffic bypass the waypoint. This is the
// conditional-waypointing contract of the paper's §6.5 scenario —
// deleting C's ACL leaves the plain waypoint tolerance unchanged but
// drops the bypass tolerance from infinite to 0.
func (v *Verifier) WaypointOnlyTolerance(srcRouter, prefix, waypoint string) (k int, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	w, ok := v.net.Topology.RouterByName(waypoint)
	if !ok {
		return 0, fmt.Errorf("sre: unknown waypoint %q", waypoint)
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	k = InfiniteTolerance
	for _, pipe := range pipes {
		hdr := pipe.OwnedHeaders(pfx)
		reach := pipe.ReachBDD(s, pipe.OriginSet(pfx), hdr)
		via := pipe.WaypointBDD(s, pipe.OriginSet(pfx), w, hdr)
		bypass := pipe.Sp.M.Diff(reach, via)
		// Bypass must never become possible: same reduction as isolation.
		if t := pipe.IsolationTolerance(bypass, hdr); t < k {
			k = t
		}
	}
	return k, nil
}

// IsolationTolerance returns the failure tolerance of the property
// "packets for prefix from srcRouter NEVER reach its originators":
// the maximum k such that no combination of at most k failures deflects
// traffic to the destination.
func (v *Verifier) IsolationTolerance(srcRouter, prefix string) (k int, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	k = InfiniteTolerance
	for _, pipe := range pipes {
		hdr := pipe.OwnedHeaders(pfx)
		prop := pipe.ReachBDD(s, pipe.OriginSet(pfx), hdr)
		if t := pipe.IsolationTolerance(prop, hdr); t < k {
			k = t
		}
	}
	return k, nil
}

// LoadBalancedPaths returns the number of forwarding paths that carry
// traffic from srcRouter to the prefix simultaneously when all links are
// up (the paper's Loadbalance property holds for n ≤ this count). For a
// prefix split across scoped pipelines by the degradation ladder, the
// maximum over the halves is reported — a sound lower bound on the
// union of paths.
func (v *Verifier) LoadBalancedPaths(srcRouter, prefix string) (n int, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	for _, pipe := range pipes {
		if c := pipe.LoadBalancePaths(s, pipe.OriginSet(pfx), pipe.OwnedHeaders(pfx)); c > n {
			n = c
		}
	}
	return n, nil
}

// FailureModel is a probabilistic failure model for Probability queries.
type FailureModel struct {
	linkDown float64
	nodeDown float64
	nodes    bool
}

// LinkFailures models independent link failures with the given
// probability of any link being down.
func LinkFailures(pDown float64) FailureModel {
	return FailureModel{linkDown: pDown}
}

// NodeAndLinkFailures models independent node failures layered over
// link failures: a link is effectively down when it or either endpoint
// node is down (§6.4).
func NodeAndLinkFailures(pLinkDown, pNodeDown float64) FailureModel {
	return FailureModel{linkDown: pLinkDown, nodeDown: pNodeDown, nodes: true}
}

// Probability returns the probability that packets for the prefix from
// srcRouter reach its originators under the failure model. When the
// verifier was built with a bounded MaxFailures budget, the result is a
// lower bound whose error is below the binomial tail P(more than
// MaxFailures failures) (§7.1).
func (v *Verifier) Probability(srcRouter, prefix string, model FailureModel) (p float64, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	var results []analysis.ProbabilityResult
	for _, pipe := range pipes {
		hdr := pipe.OwnedHeaders(pfx)
		prop := pipe.ReachBDD(s, pipe.OriginSet(pfx), hdr)
		if model.nodes {
			results = append(results, pipe.ProbabilityWithNodes(prop, prob.NodeModel{PLinkDown: model.linkDown, PNodeDown: model.nodeDown})...)
		} else {
			results = append(results, pipe.Probability(prop, prob.LinkModel{PDown: model.linkDown})...)
		}
	}
	return minProb(results)
}

// WaypointProbability is Probability for the waypoint property.
func (v *Verifier) WaypointProbability(srcRouter, prefix, waypoint string, model FailureModel) (p float64, err error) {
	defer guard("analysis", v.tel, &err)
	s, pfx, err := v.resolve(srcRouter, prefix)
	if err != nil {
		return 0, err
	}
	w, ok := v.net.Topology.RouterByName(waypoint)
	if !ok {
		return 0, fmt.Errorf("sre: unknown waypoint %q", waypoint)
	}
	pipes, err := v.pipesFor(pfx)
	if err != nil {
		return 0, err
	}
	var results []analysis.ProbabilityResult
	for _, pipe := range pipes {
		hdr := pipe.OwnedHeaders(pfx)
		prop := pipe.WaypointBDD(s, pipe.OriginSet(pfx), w, hdr)
		if model.nodes {
			results = append(results, pipe.ProbabilityWithNodes(prop, prob.NodeModel{PLinkDown: model.linkDown, PNodeDown: model.nodeDown})...)
		} else {
			results = append(results, pipe.Probability(prop, prob.LinkModel{PDown: model.linkDown})...)
		}
	}
	return minProb(results)
}

// ErrNoPFECs is returned by probability queries whose property BDD is
// empty: no (packet, failure) tuple satisfies the property at all, so
// there is no probability to report. This is distinct from a genuine
// probability of 0, which arises when tuples exist but their scenario
// sets have zero mass under the failure model.
var ErrNoPFECs = fmt.Errorf("sre: property holds for no (packet, failure) tuple")

// minProb returns the minimum probability across the extracted packet
// sets, or ErrNoPFECs when the property produced none.
func minProb(results []analysis.ProbabilityResult) (float64, error) {
	if len(results) == 0 {
		return 0, ErrNoPFECs
	}
	min := 1.0
	for _, r := range results {
		if r.P < min {
			min = r.P
		}
	}
	return min, nil
}

// RequiredBudget returns the minimum failure budget k such that ignoring
// scenarios with more than k simultaneous link failures loses at most
// imprecision of probability mass, for the network's link count and the
// model's link failure probability (§7.1). Pass the result as
// Options.MaxFailures for probabilistic analyses.
func RequiredBudget(net *Network, model FailureModel, imprecision float64) int {
	return prob.KForImprecision(net.Topology.NumLinks(), model.linkDown, imprecision)
}

// Specs is the result of specification mining.
type Specs = analysis.Specs

// PairKey identifies a (source router, destination prefix) property.
type PairKey = analysis.PairKey

// MineSpecs mines reachability tolerances (plus isolation, waypoint and
// load-balancing specs) for every (source, prefix) pair, exploring up to
// maxFailures simultaneous failures with the paper's stratified
// route/prefix pruning. Options.Context/Timeout bound the run;
// Options.Resilient lets individual prefixes degrade (quarantine and
// header-space splitting — never budget halving, which would corrupt
// the stratification) instead of failing the whole mine, with per-prefix
// outcomes reported in Specs.Outcomes.
func MineSpecs(net *Network, maxFailures int, opts Options) (specs *Specs, err error) {
	srcOpts, _, err := buildOpts(opts)
	if err != nil {
		return nil, err
	}
	srcOpts.PruneK = 0 // the miner sets the budget per stratum
	mn := &analysis.Miner{Net: net, KMax: maxFailures,
		SrcOpts: srcOpts, Resilient: opts.Resilient}
	defer guard("mine", srcOpts.Telemetry, &err)
	return mn.Mine()
}

// Difference reports one behavioural difference found by Diff.
type Difference struct {
	Src            string
	Prefix         string
	FailuresOnly   bool // invisible with all links up (DNA-invisible)
	WitnessDown    []string
	ToleranceDelta [2]int
	ProbDelta      [2]float64
}

// Diff compares two configurations over the product space of packets
// and failures (up to maxFailures), returning the (source, prefix)
// reachability differences, each with a concrete failure-scenario
// witness and before/after tolerance and probability. Of opts, only the
// telemetry fields (both runs report into the same registry), the
// Context/Timeout budget, and BDDNodeLimit are consulted; pass Options{}
// for the previous behaviour.
func Diff(before, after *Network, maxFailures int, model FailureModel, opts Options) (out []Difference, err error) {
	tel := opts.telemetry()
	checker := resil.NewChecker(opts.Context, opts.Timeout, 0)
	runOpts := src.Options{PruneK: maxFailures, Telemetry: tel,
		Interrupt: checker.Fn(), BDDNodeLimit: opts.BDDNodeLimit}
	defer guard("diff", tel, &err)
	pb, err := analysis.Run(before, runOpts)
	if err != nil {
		return nil, err
	}
	defer pb.Release()
	pa, err := analysis.Run(after, runOpts)
	if err != nil {
		return nil, err
	}
	defer pa.Release()
	lm := prob.LinkModel{PDown: model.linkDown}
	raw := analysis.DiffReachability(pb, pa, &lm)
	out = make([]Difference, 0, len(raw))
	for _, d := range raw {
		diff := Difference{
			Src:            after.Topology.Name(d.Src),
			Prefix:         d.Prefix.String(),
			FailuresOnly:   !d.ChangedUnderNoFailures(pa),
			ToleranceDelta: [2]int{d.ToleranceBefore, d.ToleranceAfter},
			ProbDelta:      [2]float64{d.ProbBefore, d.ProbAfter},
		}
		for _, l := range d.WitnessDownLinks {
			link := after.Topology.Link(l)
			diff.WitnessDown = append(diff.WitnessDown,
				after.Topology.Name(link.A)+"~"+after.Topology.Name(link.B))
		}
		out = append(out, diff)
	}
	return out, nil
}

package sre_test

// Dynamic-reordering invariance through the public API. Sifting changes
// how BDDs are laid out mid-run, never what they mean: a -reorder run
// must report byte-identical results to the static baseline at every
// parallelism level and worker count, and — because DynamicReorder does
// not participate in cache keys — static and reordered runs must share
// persistent-store records cleanly in both directions.

import (
	"reflect"
	"testing"

	"sre"
	"sre/internal/workload"
)

// fatTreeReorderRun is fatTreeOrderRun with dynamic reordering toggled.
func fatTreeReorderRun(t *testing.T, reorder bool, parallelism, workers int) ([]sre.PrefixOutcome, int, []sre.PrefixResult, sre.MetricsReport) {
	t.Helper()
	net := workload.FatTree(4, workload.BGP)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 2, Resilient: true, DynamicReorder: reorder,
		Parallelism: parallelism, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	outs := v.Outcomes()
	m := v.Metrics()
	sweep, err := v.FailureTolerances("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	return outs, m.NumPFECs, sweep, m
}

// TestReorderParity pins the tentpole's public contract: a run with
// dynamic reordering armed reports the same outcomes, PFEC counts, and
// tolerance sweeps as the static baseline at parallelism 1, 2, and 8.
func TestReorderParity(t *testing.T) {
	baseOuts, basePFECs, baseSweep, _ := fatTreeReorderRun(t, false, 1, 0)
	if len(baseOuts) == 0 {
		t.Fatal("baseline reported no outcomes")
	}
	for _, par := range []int{1, 2, 8} {
		outs, pfecs, sweep, m := fatTreeReorderRun(t, true, par, 0)
		name := "reorder/par=" + itoa(par)
		if !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("%s: outcomes diverge\n got %+v\nwant %+v", name, outs, baseOuts)
		}
		if pfecs != basePFECs {
			t.Errorf("%s: NumPFECs = %d, want %d", name, pfecs, basePFECs)
		}
		if !reflect.DeepEqual(sweep, baseSweep) {
			t.Errorf("%s: tolerance sweep diverges", name)
		}
		if !m.BDD.ReorderEnabled {
			t.Errorf("%s: metrics do not report reordering armed", name)
		}
		if m.BDD.VarOrderMethod == "" || m.BDD.VarOrderMethod == "auto" {
			t.Errorf("%s: metrics report unresolved order method %q", name, m.BDD.VarOrderMethod)
		}
	}
}

// TestReorderWorkersParity runs the fleet path: the DynamicReorder flag
// crosses the init frame, workers may sift their managers mid-task, and
// the order-stamped serialized results must decode identically on the
// coordinator side.
func TestReorderWorkersParity(t *testing.T) {
	baseOuts, basePFECs, baseSweep, _ := fatTreeReorderRun(t, false, 1, 0)
	outs, pfecs, sweep, _ := fatTreeReorderRun(t, true, 0, 2)
	if !reflect.DeepEqual(outs, baseOuts) {
		t.Error("workers=2 reorder: outcomes diverge")
	}
	if pfecs != basePFECs {
		t.Errorf("workers=2 reorder: NumPFECs = %d, want %d", pfecs, basePFECs)
	}
	if !reflect.DeepEqual(sweep, baseSweep) {
		t.Error("workers=2 reorder: tolerance sweep diverges")
	}
}

// TestReorderCacheShared pins the cache contract: DynamicReorder is NOT
// part of the cache key — records published by a static run replay
// under a reordered run (and vice versa) with zero quarantines, because
// the order-stamped serialization format decodes under any level map.
func TestReorderCacheShared(t *testing.T) {
	dir := t.TempDir()
	run := func(reorder bool) ([]sre.PrefixOutcome, sre.StoreMetrics) {
		st, err := sre.OpenStore(dir, sre.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		net := workload.FatTree(4, workload.BGP)
		v, err := sre.NewVerifier(net, sre.Options{
			MaxFailures: 2, Resilient: true, Store: st, DynamicReorder: reorder})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		return v.Outcomes(), st.Metrics()
	}

	coldOuts, coldM := run(false)
	if coldM.Puts == 0 {
		t.Fatalf("cold run published nothing: %+v", coldM)
	}

	warmOuts, warmM := run(true)
	if warmM.Hits == 0 {
		t.Errorf("reordered run missed records published by the static run: %+v", warmM)
	}
	if warmM.Quarantined != 0 {
		t.Errorf("reordered run quarantined %d shared records", warmM.Quarantined)
	}
	if !reflect.DeepEqual(warmOuts, coldOuts) {
		t.Error("warm reordered run diverges from cold static results")
	}
}

package sre_test

// Persistent result cache through the public API. The acceptance bar
// for Options.Store is byte-identity: a warm, cold, or deliberately
// poisoned cache must never change what a run reports — only how fast
// it reports it (and, after corruption, the quarantine counters).

import (
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"sre"
	"sre/internal/workload"
)

// fatTreeCacheRun is fatTreeRun with a result store attached, at the
// given in-process parallelism and worker count. It opens a fresh store
// handle on dir so each run reports its own traffic metrics.
func fatTreeCacheRun(t *testing.T, dir string, parallelism, workers int) ([]sre.PrefixOutcome, int, []sre.PrefixResult, sre.StoreMetrics) {
	t.Helper()
	st, err := sre.OpenStore(dir, sre.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	net := workload.FatTree(4, workload.BGP)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 2, Resilient: true,
		Parallelism: parallelism, Workers: workers, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	outs := v.Outcomes()
	numPFECs := v.Metrics().NumPFECs
	sweep, err := v.FailureTolerances("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	return outs, numPFECs, sweep, st.Metrics()
}

// TestCacheDeterminism pins the cache's public contract: cold and warm
// cached runs — sequential, parallel, and multi-process — are
// indistinguishable from a cache-less run.
func TestCacheDeterminism(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeRun(t, 1)
	if len(baseOuts) == 0 {
		t.Fatal("baseline reported no outcomes")
	}
	dir := t.TempDir()

	outs, pfecs, sweep, m := fatTreeCacheRun(t, dir, 1, 0)
	if !reflect.DeepEqual(outs, baseOuts) || pfecs != basePFECs || !reflect.DeepEqual(sweep, baseSweep) {
		t.Fatalf("cold cached run diverges from cache-less run")
	}
	if m.Puts == 0 {
		t.Fatalf("cold run published nothing: %+v", m)
	}
	if m.Hits != 0 {
		t.Fatalf("cold run hit a fresh store: %+v", m)
	}

	cases := []struct {
		name                 string
		parallelism, workers int
	}{
		{"warm/parallel=1", 1, 0},
		{"warm/parallel=2", 2, 0},
		{"warm/workers=1", 0, 1},
		{"warm/workers=2", 0, 2},
	}
	for _, tc := range cases {
		outs, pfecs, sweep, m := fatTreeCacheRun(t, dir, tc.parallelism, tc.workers)
		if !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("%s: outcomes diverge\n got %+v\nwant %+v", tc.name, outs, baseOuts)
		}
		if pfecs != basePFECs {
			t.Errorf("%s: NumPFECs = %d, want %d", tc.name, pfecs, basePFECs)
		}
		if !reflect.DeepEqual(sweep, baseSweep) {
			t.Errorf("%s: tolerance sweep diverges", tc.name)
		}
		if m.Hits == 0 {
			t.Errorf("%s: warm run missed the cache entirely: %+v", tc.name, m)
		}
		if m.Quarantined != 0 {
			t.Errorf("%s: clean store quarantined records: %+v", tc.name, m)
		}
	}
}

// storeRecords lists every record file under dir's objects tree in
// path order.
func storeRecords(t *testing.T, dir string) []string {
	t.Helper()
	var recs []string
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".rec" {
			recs = append(recs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(recs)
	return recs
}

// TestCachePoisonedSelfHeals is the acceptance scenario: truncate,
// bit-flip, and half-rename records in a populated store, then run
// against it. The run must succeed with results identical to a cold
// cache-less run, and the corruption must show up as quarantined
// records in the metrics — never as wrong answers.
func TestCachePoisonedSelfHeals(t *testing.T) {
	baseOuts, basePFECs, baseSweep := fatTreeRun(t, 1)
	dir := t.TempDir()
	fatTreeCacheRun(t, dir, 2, 0) // populate

	recs := storeRecords(t, dir)
	if len(recs) < 3 {
		t.Fatalf("need at least 3 records to poison, have %d", len(recs))
	}
	// Torn write: the record ends mid-payload.
	fi, err := os.Stat(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(recs[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Bit flip: one payload byte differs, checksum catches it.
	buf, err := os.ReadFile(recs[1])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(recs[1], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Half-renamed publication: a crash left a temp beside the objects
	// and an empty record under the real name.
	if err := os.WriteFile(filepath.Join(filepath.Dir(recs[2]), ".tmp-99999-1"), buf[:len(buf)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recs[2], nil, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name                 string
		parallelism, workers int
	}{
		{"poisoned/parallel=2", 2, 0},
		{"poisoned/workers=2", 0, 2},
	} {
		outs, pfecs, sweep, m := fatTreeCacheRun(t, dir, tc.parallelism, tc.workers)
		if !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("%s: outcomes diverge after corruption\n got %+v\nwant %+v", tc.name, outs, baseOuts)
		}
		if pfecs != basePFECs {
			t.Errorf("%s: NumPFECs = %d, want %d", tc.name, pfecs, basePFECs)
		}
		if !reflect.DeepEqual(sweep, baseSweep) {
			t.Errorf("%s: tolerance sweep diverges after corruption", tc.name)
		}
		if tc.workers == 0 && m.Quarantined == 0 {
			t.Errorf("%s: no quarantined records reported: %+v", tc.name, m)
		}
		// The first poisoned pass quarantines and republishes; later
		// passes must find a fully healed store.
		baseOuts2, _, _, m2 := fatTreeCacheRun(t, dir, tc.parallelism, tc.workers)
		if !reflect.DeepEqual(baseOuts2, baseOuts) {
			t.Errorf("%s: healed store diverges", tc.name)
		}
		if m2.Quarantined != 0 {
			t.Errorf("%s: corruption survived the healing pass: %+v", tc.name, m2)
		}

		// Re-poison for the next scheduling mode.
		recs = storeRecords(t, dir)
		if len(recs) > 0 {
			if err := os.Truncate(recs[0], 3); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The quarantine directory holds the corpses for post-mortems.
	st, err := sre.OpenStore(dir, sre.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuarantinedFiles == 0 {
		t.Errorf("quarantine directory is empty after poisoning: %+v", stats)
	}
}

// TestCacheOptionsInvalidate pins that a warm cache never replays
// results for different verification options: changing the failure
// budget must recompute, not hit.
func TestCacheOptionsInvalidate(t *testing.T) {
	dir := t.TempDir()
	fatTreeCacheRun(t, dir, 2, 0) // populate at MaxFailures 2

	st, err := sre.OpenStore(dir, sre.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	net := workload.FatTree(4, workload.BGP)
	v, err := sre.NewVerifier(net, sre.Options{
		MaxFailures: 1, Resilient: true, Parallelism: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	if m := st.Metrics(); m.Hits != 0 {
		t.Fatalf("run with different options hit stale records: %+v", m)
	}
}

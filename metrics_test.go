package sre_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"sre"
	"sre/internal/workload"
)

// TestMetricsReport checks the typed report and its JSON schema: stage
// durations, PFEC count, BDD peak nodes, cache hit ratio, and GC runs
// must all be present (the acceptance contract of the -metrics flag).
func TestMetricsReport(t *testing.T) {
	tel := sre.NewTelemetry()
	v := verifier(t, sre.Options{MaxFailures: -1, Telemetry: tel})
	defer v.Release()

	m := v.Metrics()
	if m.SRCSeconds <= 0 || m.SPFSeconds <= 0 {
		t.Errorf("stage durations must be positive: src %v, spf %v", m.SRCSeconds, m.SPFSeconds)
	}
	if m.NumPFECs == 0 || m.NumPFECs != v.NumPFECs() {
		t.Errorf("NumPFECs = %d, verifier reports %d", m.NumPFECs, v.NumPFECs())
	}
	if m.NumRouters != 3 || m.NumLinks != 3 {
		t.Errorf("topology size %d routers / %d links, want 3/3", m.NumRouters, m.NumLinks)
	}
	if m.BDD.PeakNodes <= 0 || m.BDD.LiveNodes > m.BDD.PeakNodes {
		t.Errorf("implausible BDD stats: %+v", m.BDD)
	}
	if m.BDD.CacheHitRatio < 0 || m.BDD.CacheHitRatio > 1 {
		t.Errorf("cache hit ratio %v out of [0,1]", m.BDD.CacheHitRatio)
	}
	if m.Telemetry == nil {
		t.Fatal("telemetry was enabled; report must embed the snapshot")
	}
	if m.Telemetry.Counters["src.activations"] != int64(m.Activations) {
		t.Errorf("telemetry counter src.activations = %d, engine stats %d",
			m.Telemetry.Counters["src.activations"], m.Activations)
	}
	if got := m.Telemetry.Gauges["bdd.peak_nodes"]; got != float64(m.BDD.PeakNodes) {
		t.Errorf("bdd.peak_nodes gauge = %v, stats %d", got, m.BDD.PeakNodes)
	}
	if len(m.Telemetry.Spans) == 0 || m.Telemetry.Spans[0].Name != "pipeline" {
		t.Errorf("expected a pipeline root span, got %+v", m.Telemetry.Spans)
	}

	var buf bytes.Buffer
	if err := v.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		SRCSeconds float64 `json:"src_seconds"`
		SPFSeconds float64 `json:"spf_seconds"`
		NumPFECs   int     `json:"num_pfecs"`
		BDD        struct {
			PeakNodes     int     `json:"peak_nodes"`
			CacheHitRatio float64 `json:"cache_hit_ratio"`
			GCRuns        int     `json:"gc_runs"`
		} `json:"bdd"`
		Telemetry map[string]json.RawMessage `json:"telemetry"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.SRCSeconds != m.SRCSeconds || decoded.NumPFECs != m.NumPFECs ||
		decoded.BDD.PeakNodes != m.BDD.PeakNodes {
		t.Errorf("JSON round trip mismatch: %+v vs %+v", decoded, m)
	}
	if decoded.Telemetry == nil {
		t.Error("telemetry section missing from JSON")
	}
}

// TestMetricsDisabledTelemetry checks the report is complete without a
// telemetry registry and omits the snapshot section.
func TestMetricsDisabledTelemetry(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	m := v.Metrics()
	if m.Telemetry != nil {
		t.Error("telemetry section must be absent when disabled")
	}
	if m.SRCSeconds <= 0 || m.NumPFECs == 0 || m.BDD.PeakNodes == 0 {
		t.Errorf("base metrics must not depend on telemetry: %+v", m)
	}
}

// TestMetricsMonotoneAcrossRuns shares one registry across two runs:
// counters must accumulate, never reset, and peaks only grow.
func TestMetricsMonotoneAcrossRuns(t *testing.T) {
	tel := sre.NewTelemetry()
	v1 := verifier(t, sre.Options{MaxFailures: -1, Telemetry: tel})
	first := v1.Metrics().Telemetry
	v1.Release()
	v2 := verifier(t, sre.Options{MaxFailures: -1, Telemetry: tel})
	defer v2.Release()
	second := v2.Metrics().Telemetry
	for name, val := range first.Counters {
		if second.Counters[name] < val {
			t.Errorf("counter %s decreased across runs: %d -> %d", name, val, second.Counters[name])
		}
	}
	if second.Counters["src.activations"] <= first.Counters["src.activations"] {
		t.Error("second run must add activations")
	}
	if second.Gauges["bdd.peak_nodes"] < first.Gauges["bdd.peak_nodes"] {
		t.Errorf("peak gauge decreased: %v -> %v",
			first.Gauges["bdd.peak_nodes"], second.Gauges["bdd.peak_nodes"])
	}
	if len(second.Spans) <= len(first.Spans) {
		t.Error("second run must append its own pipeline span")
	}
}

// TestProgressEvents routes progress into a callback and checks the
// stages report with sane totals.
func TestProgressEvents(t *testing.T) {
	var events []sre.ProgressEvent
	v := verifier(t, sre.Options{MaxFailures: -1,
		Progress: sre.ProgressFunc(func(e sre.ProgressEvent) { events = append(events, e) })})
	defer v.Release()
	sawSPFFinal := false
	for _, e := range events {
		if e.Stage == "spf" {
			if e.Total != 3 {
				t.Errorf("spf total = %d, want 3 routers", e.Total)
			}
			if e.Final && e.Done == e.Total {
				sawSPFFinal = true
			}
		}
	}
	if !sawSPFFinal {
		t.Errorf("no final spf event among %d events", len(events))
	}
}

// isolatedNet has B originate a prefix that an inbound ACL makes
// unreachable from A under EVERY failure scenario: the reach property
// BDD is empty, which is not the same thing as probability 0.
const isolatedNet = `
topology
  router A
  router B
  link A B
end
router A
  bgp 65001
end
router B
  bgp 65002
    network 10.0.0.0/24
  interface A
    acl-in deny 10.0.0.0/24
    acl-in permit any
end
`

// TestProbabilityNoPFECs pins the empty-result contract: a property
// satisfied by no (packet, failure) tuple returns ErrNoPFECs instead of
// silently reporting probability 0, while a genuine probability of 0
// (tuples exist, their scenarios have no mass) returns 0 with nil
// error.
func TestProbabilityNoPFECs(t *testing.T) {
	net, err := sre.ParseNetwork(isolatedNet)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	p, err := v.Probability("A", "10.0.0.0/24", sre.LinkFailures(0.001))
	if !errors.Is(err, sre.ErrNoPFECs) {
		t.Fatalf("want ErrNoPFECs for an empty property, got p=%v err=%v", p, err)
	}
	if _, err := v.WaypointProbability("A", "10.0.0.0/24", "B", sre.LinkFailures(0.001)); !errors.Is(err, sre.ErrNoPFECs) {
		t.Errorf("waypoint probability: want ErrNoPFECs, got %v", err)
	}

	// Genuine zero: the figure-1 pair is reachable (tuples exist), but
	// with every link down with certainty no scenario delivers.
	v2 := verifier(t, sre.Options{MaxFailures: -1})
	defer v2.Release()
	p, err = v2.Probability("A", "192.0.0.0/2", sre.LinkFailures(1.0))
	if err != nil {
		t.Fatalf("probability 0 must not be an error: %v", err)
	}
	if p != 0 {
		t.Errorf("probability = %v, want exactly 0", p)
	}
}

// BenchmarkTelemetryOverhead compares the full pipeline on the smallest
// fat tree with telemetry disabled and enabled. The disabled
// configuration must stay within a few percent of a build without the
// instrumentation (nil-handle no-ops; see obs.TestNilTelemetryAllocs
// for the allocation-free guarantee); compare the two sub-benchmarks
// with benchstat to measure the enabled cost.
func BenchmarkTelemetryOverhead(b *testing.B) {
	net := workload.FatTree(4, workload.BGP)
	run := func(b *testing.B, opts sre.Options) {
		for i := 0; i < b.N; i++ {
			v, err := sre.NewVerifier(net, opts)
			if err != nil {
				b.Fatal(err)
			}
			v.Release()
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, sre.Options{MaxFailures: 1})
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, sre.Options{MaxFailures: 1, Telemetry: sre.NewTelemetry()})
	})
}

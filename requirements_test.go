package sre_test

import (
	"strings"
	"testing"

	"sre"
)

const reqsText = `
# production requirements for the walkthrough network
reach       A 128.0.0.0/1   tolerance>=1
reach       A 192.0.0.0/2   tolerance>=0
waypoint    A 192.0.0.0/2   via B tolerance>=0
probability A 128.0.0.0/1   >=0.99 plink=0.01
loadbalance A 128.0.0.0/1   paths>=1
`

func TestParseRequirements(t *testing.T) {
	reqs, err := sre.ParseRequirementsString(reqsText)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5 {
		t.Fatalf("want 5 requirements, got %d", len(reqs))
	}
	if reqs[0].Kind != "reach" || reqs[0].MinK != 1 {
		t.Errorf("req 0 parsed wrong: %+v", reqs[0])
	}
	if reqs[2].Via != "B" {
		t.Errorf("waypoint via = %q", reqs[2].Via)
	}
	if reqs[3].MinP != 0.99 || reqs[3].PLink != 0.01 {
		t.Errorf("probability parsed wrong: %+v", reqs[3])
	}
}

func TestParseRequirementErrors(t *testing.T) {
	for _, bad := range []string{
		"fly A 10.0.0.0/8",
		"reach A",
		"waypoint A 10.0.0.0/8 tolerance>=1",
		"probability A 10.0.0.0/8 0.9",
		"probability A 10.0.0.0/8 >=x",
		"loadbalance A 10.0.0.0/8 paths>=x",
		"reach A 10.0.0.0/8 bogus",
	} {
		if _, err := sre.ParseRequirementsString(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

func TestCheckRequirements(t *testing.T) {
	v := verifier(t, sre.Options{MaxFailures: -1})
	defer v.Release()
	reqs, err := sre.ParseRequirementsString(reqsText)
	if err != nil {
		t.Fatal(err)
	}
	results, all := v.CheckRequirements(reqs)
	if !all {
		for _, r := range results {
			if !r.Holds {
				t.Errorf("line %d (%s %s %s): got %s, err=%v",
					r.Req.Line, r.Req.Kind, r.Req.Src, r.Req.Prefix, r.Got, r.Err)
			}
		}
		t.Fatal("all requirements should hold on the walkthrough network")
	}
	// Tighten one requirement beyond what the network provides.
	strict, err := sre.ParseRequirementsString("reach A 192.0.0.0/2 tolerance>=1")
	if err != nil {
		t.Fatal(err)
	}
	results, all = v.CheckRequirements(strict)
	if all || results[0].Holds {
		t.Error("192/2 cannot tolerate a failure; the check must fail")
	}
	if results[0].Got != "0" {
		t.Errorf("got %q, want measured tolerance 0", results[0].Got)
	}
	// Unknown router: evaluation error, requirement fails, others still run.
	mixed, err := sre.ParseRequirementsString("reach Z 128.0.0.0/1 tolerance>=0\nreach A 128.0.0.0/1 tolerance>=0")
	if err != nil {
		t.Fatal(err)
	}
	results, all = v.CheckRequirements(mixed)
	if all {
		t.Error("unknown router must fail the run")
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "unknown router") {
		t.Errorf("want unknown-router error, got %v", results[0].Err)
	}
	if !results[1].Holds {
		t.Error("second requirement must still be evaluated")
	}
}

func TestRequirementsCatchRegression(t *testing.T) {
	// The §6.5 change (deleting C's ACL) breaks the waypoint
	// requirement under failures — the requirements run catches it.
	net, err := sre.ParseNetwork(figure1)
	if err != nil {
		t.Fatal(err)
	}
	after := net.Clone()
	c := after.Topology.MustRouter("C")
	a := after.Topology.MustRouter("A")
	ac, _ := after.Topology.LinkBetween(a, c)
	after.Router(c).Interfaces[ac].ACLIn = nil

	// The contract: traffic for 192/2 may reach C ONLY through B, under
	// any combination of up to 2 failures. Before the change the direct
	// path is ACL-blocked, so nothing can bypass B; after the change a
	// single failure deflects traffic around B.
	wp := "waypoint-only A 192.0.0.0/2 via B tolerance>=2"
	reqsWp, err := sre.ParseRequirementsString(wp)
	if err != nil {
		t.Fatal(err)
	}
	vBefore, err := sre.NewVerifier(net, sre.Options{MaxFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vBefore.Release()
	if _, all := vBefore.CheckRequirements(reqsWp); !all {
		t.Fatal("waypoint requirement should hold before the change")
	}
	vAfter, err := sre.NewVerifier(after, sre.Options{MaxFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer vAfter.Release()
	results, all := vAfter.CheckRequirements(reqsWp)
	if all {
		t.Errorf("waypoint requirement should break after the ACL deletion (got %s)", results[0].Got)
	}
}

package sre_test

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"sre"
	"sre/internal/workload"
)

// Golden end-to-end results recorded from the pre-overhaul BDD kernel.
// The kernel overhaul (relational product, scratch memo tables, cache
// sweeping, balanced folds) must not move ANY of these numbers, at any
// parallelism level — BDDs are canonical, so every kernel change is
// observationally invisible. If a value here moves, a kernel change
// altered results, not just throughput.
//
// The quickstart goldens are parallelism-aware: its two prefixes
// overlap (192.0.0.0/2 ⊂ 128.0.0.0/1), and a sharded parallel run
// scopes a pipeline per prefix, so the covering prefix's shard also
// enumerates PFECs for the subset's headers (8 PFECs / 3 classes vs
// 5 / 2 sequentially). That split was recorded from the pre-overhaul
// kernel too — the guard pins it per level rather than papering over
// it.

const goldenNetwork = `
topology
  router A
  router B
  router C
  link A B
  link B C
  link A C
end

router A
  bgp 65001
end

router B
  bgp 65002
end

router C
  bgp 65003
    network 128.0.0.0/1
    network 192.0.0.0/2
    neighbor A export-map NO192
  route-map NO192
    10 deny prefix 192.0.0.0/2
    20 permit any
  interface A
    acl-in deny 192.0.0.0/2
    acl-in permit any
end
`

func TestGoldenResultsAcrossKernelAndParallelism(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		for _, legacy := range []bool{false, true} {
			name := fmt.Sprintf("par=%d/legacy=%v", par, legacy)
			t.Run(name, func(t *testing.T) {
				checkGoldenQuickstart(t, par, legacy)
				checkGoldenFatTree(t, par, legacy)
			})
		}
	}
}

func checkGoldenQuickstart(t *testing.T, par int, legacy bool) {
	net, err := sre.ParseNetwork(goldenNetwork)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sre.NewVerifier(net, sre.Options{MaxFailures: -1,
		Parallelism: par, LegacyBDDKernel: legacy})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	wantPFECs := 5
	if par > 1 {
		wantPFECs = 8
	}
	if got := v.NumPFECs(); got != wantPFECs {
		t.Errorf("NumPFECs = %d, want %d", got, wantPFECs)
	}
	classes, err := v.ForwardingClasses("A")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, c := range classes {
		lines = append(lines, fmt.Sprintf("%s delivered=%v packets=%g minfail=%d scenarios=%g",
			strings.Join(c.Path, ">"), c.Delivered, c.Packets, c.MinFailures, c.Scenarios))
	}
	sort.Strings(lines)
	want := []string{
		"A>B>C delivered=true packets=2.147483648e+09 minfail=0 scenarios=2",
		"A>C delivered=true packets=1.073741824e+09 minfail=0 scenarios=4",
	}
	if par > 1 {
		want = []string{
			"A>B>C delivered=true packets=1.073741824e+09 minfail=0 scenarios=2",
			"A>B>C delivered=true packets=2.147483648e+09 minfail=0 scenarios=2",
			"A>C delivered=true packets=1.073741824e+09 minfail=0 scenarios=4",
		}
	}
	if strings.Join(lines, ";") != strings.Join(want, ";") {
		t.Errorf("forwarding classes:\n  got  %v\n  want %v", lines, want)
	}
	for _, tc := range []struct {
		prefix string
		want   int
	}{{"192.0.0.0/2", 0}, {"128.0.0.0/1", 1}} {
		k, err := v.FailureTolerance("A", tc.prefix)
		if err != nil {
			t.Fatal(err)
		}
		if k != tc.want {
			t.Errorf("FailureTolerance(A, %s) = %d, want %d", tc.prefix, k, tc.want)
		}
	}
	p, err := v.Probability("A", "128.0.0.0/1", sre.LinkFailures(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.981) > 1e-12 {
		t.Errorf("Probability(A, 128.0.0.0/1) = %.15f, want 0.981", p)
	}
}

func checkGoldenFatTree(t *testing.T, par int, legacy bool) {
	fv, err := sre.NewVerifier(workload.FatTree(4, workload.BGP),
		sre.Options{MaxFailures: 2, Parallelism: par, LegacyBDDKernel: legacy})
	if err != nil {
		t.Fatal(err)
	}
	defer fv.Release()
	if got := fv.NumPFECs(); got != 2616 {
		t.Errorf("fat tree NumPFECs = %d, want 2616", got)
	}
	sweep, err := fv.FailureTolerances("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sweep {
		if r.Err != nil {
			t.Fatalf("tolerance %s: %v", r.Prefix, r.Err)
		}
		want := 1
		if r.Prefix == "10.0.0.0/24" { // edge0-0's own prefix
			want = sre.InfiniteTolerance
		}
		if r.Value != want {
			t.Errorf("fat tree tolerance %s = %d, want %d", r.Prefix, r.Value, want)
		}
	}
	if len(sweep) != 8 {
		t.Errorf("fat tree tolerance sweep covers %d prefixes, want 8", len(sweep))
	}
	fc, err := fv.ForwardingClasses("edge0-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 123 {
		t.Errorf("fat tree classes = %d, want 123", len(fc))
	}
	sumP, sumS := 0.0, 0.0
	minF := 0
	for _, c := range fc {
		sumP += c.Packets
		sumS += c.Scenarios
		minF += c.MinFailures
	}
	if sumP != 31488 {
		t.Errorf("fat tree sum packets = %g, want 31488", sumP)
	}
	if sumS != 4.294978092e+09 {
		t.Errorf("fat tree sum scenarios = %g, want 4.294978092e+09", sumS)
	}
	if minF != 192 {
		t.Errorf("fat tree sum min failures = %d, want 192", minF)
	}
}
